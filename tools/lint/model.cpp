#include "lint/model.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <utility>

namespace phodis::lint {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

}  // namespace

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------
std::vector<Token> tokenize(const LexedFile& lexed) {
  std::vector<Token> out;
  bool pp_continuation = false;
  for (std::size_t li = 0; li < lexed.code.size(); ++li) {
    const std::string& line = lexed.code[li];
    const std::size_t first = line.find_first_not_of(" \t");
    if (pp_continuation || (first != std::string::npos && line[first] == '#')) {
      const std::size_t last = line.find_last_not_of(" \t");
      pp_continuation = last != std::string::npos && line[last] == '\\';
      continue;
    }
    pp_continuation = false;

    const int lineno = static_cast<int>(li) + 1;
    const std::size_t n = line.size();
    std::size_t i = 0;
    while (i < n) {
      const char c = line[i];
      if (c == ' ' || c == '\t' || c == '\r') {
        ++i;
        continue;
      }
      if (is_ident_start(c)) {
        std::size_t j = i + 1;
        while (j < n && is_ident_char(line[j])) ++j;
        out.push_back({Token::Kind::kIdent, line.substr(i, j - i), lineno});
        i = j;
        continue;
      }
      if (is_digit(c) || (c == '.' && i + 1 < n && is_digit(line[i + 1]))) {
        // pp-number: alnum, '.', digit separators, and a sign directly
        // after an exponent marker (1e-3, 0x1p+2).
        std::size_t j = i + 1;
        while (j < n) {
          const char d = line[j];
          if (is_ident_char(d) || d == '.' || d == '\'') {
            ++j;
            continue;
          }
          const char prev = line[j - 1];
          if ((d == '+' || d == '-') &&
              (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P')) {
            ++j;
            continue;
          }
          break;
        }
        out.push_back({Token::Kind::kNumber, line.substr(i, j - i), lineno});
        i = j;
        continue;
      }
      if (c == '"' || c == '\'') {
        // Blanked literals survive as adjacent quote pairs.
        if (i + 1 < n && line[i + 1] == c) {
          out.push_back({Token::Kind::kPunct, std::string(2, c), lineno});
          i += 2;
        } else {
          out.push_back({Token::Kind::kPunct, std::string(1, c), lineno});
          ++i;
        }
        continue;
      }
      if (i + 1 < n) {
        const char d = line[i + 1];
        if ((c == ':' && d == ':') || (c == '-' && d == '>') ||
            (c == '&' && d == '&') || (c == '|' && d == '|')) {
          out.push_back({Token::Kind::kPunct, std::string{c, d}, lineno});
          i += 2;
          continue;
        }
      }
      out.push_back({Token::Kind::kPunct, std::string(1, c), lineno});
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token-walk helpers
// ---------------------------------------------------------------------------
namespace {

/// Matching close for t[open] in {'(', '[', '{'}; kNpos when unbalanced.
std::size_t match_group(const std::vector<Token>& t, std::size_t open) {
  const std::string& o = t[open].text;
  const char* close = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == o) {
      ++depth;
    } else if (t[i].text == close) {
      if (--depth == 0) return i;
    }
  }
  return kNpos;
}

/// Naive angle-bracket match for template argument lists, bounded by
/// `limit` tokens and bailing at tokens that cannot appear inside one.
std::size_t match_angle(const std::vector<Token>& t, std::size_t open,
                        std::size_t limit) {
  int depth = 0;
  const std::size_t end = std::min(t.size(), open + limit);
  for (std::size_t i = open; i < end; ++i) {
    const std::string& s = t[i].text;
    if (s == "<") {
      ++depth;
    } else if (s == ">") {
      if (--depth == 0) return i;
    } else if (s == ";" || s == "{") {
      return kNpos;
    }
  }
  return kNpos;
}

/// Identifiers that look like calls but never name a function definition.
const std::set<std::string>& structural_keywords() {
  static const std::set<std::string> kw = {
      "if",      "for",     "while",    "switch",        "return",
      "catch",   "sizeof",  "new",      "delete",        "throw",
      "decltype", "alignof", "alignas", "typeid",        "noexcept",
      "constexpr", "static_assert",     "defined",       "case",
      "do",      "else",    "assert",   "static_cast",   "const_cast",
      "dynamic_cast",        "reinterpret_cast"};
  return kw;
}

/// `i` points at `enum`; records the definition (if it is one) and
/// returns the index of its closing token so the caller can skip it.
std::size_t parse_enum(const std::vector<Token>& t, std::size_t i,
                       const std::string& path, std::vector<EnumDef>& out) {
  const std::size_t n = t.size();
  std::size_t j = i + 1;
  if (j < n && (t[j].text == "class" || t[j].text == "struct")) ++j;
  EnumDef def;
  def.file = path;
  def.line = t[i].line;
  if (j < n && t[j].kind == Token::Kind::kIdent) {
    def.name = t[j].text;
    ++j;
  }
  while (j < n && t[j].text != "{" && t[j].text != ";") ++j;  // base clause
  if (j >= n || t[j].text == ";") return j < n ? j : n - 1;   // fwd/opaque
  const std::size_t close = match_group(t, j);
  if (close == kNpos) return j;
  std::size_t k = j + 1;
  while (k < close) {
    if (t[k].kind == Token::Kind::kIdent) {
      def.enumerators.push_back(t[k].text);
      ++k;
      int nest = 0;  // skip "= expr" up to the next top-level comma
      while (k < close) {
        const std::string& s = t[k].text;
        if (s == "(" || s == "{" || s == "[") ++nest;
        if (s == ")" || s == "}" || s == "]") --nest;
        ++k;
        if (s == "," && nest == 0) break;
      }
    } else {
      ++k;
    }
  }
  out.push_back(std::move(def));
  return close;
}

struct ClassScope {
  std::string name;
  std::size_t close = kNpos;  // token index of the scope's '}'
};

/// Try to parse a function definition whose name token is at `i` (already
/// known to be followed by '('). Appends to fm.functions on success.
void try_function(FileModel& fm, const std::vector<Token>& t, std::size_t i,
                  const std::vector<ClassScope>& scopes) {
  const std::size_t n = t.size();
  const std::size_t close = match_group(t, i + 1);
  if (close == kNpos) return;
  std::size_t j = close + 1;

  // Trailing signature qualifiers.
  while (j < n) {
    const std::string& s = t[j].text;
    if (s == "const" || s == "override" || s == "final" || s == "&" ||
        s == "&&") {
      ++j;
      continue;
    }
    if (s == "noexcept") {
      ++j;
      if (j < n && t[j].text == "(") {
        const std::size_t c = match_group(t, j);
        if (c == kNpos) return;
        j = c + 1;
      }
      continue;
    }
    break;
  }
  if (j >= n) return;

  if (t[j].text == "->") {
    // Trailing return type: a definition ends it with '{'.
    ++j;
    while (j < n && t[j].text != "{" && t[j].text != ";" &&
           t[j].text != ")" && t[j].text != ",") {
      ++j;
    }
    if (j >= n || t[j].text != "{") return;
  } else if (t[j].text == ":") {
    // Constructor initializer list: name [<...>] (args)|{args} [, ...] '{'.
    ++j;
    while (true) {
      bool saw_name = false;
      while (j < n &&
             (t[j].kind == Token::Kind::kIdent || t[j].text == "::")) {
        saw_name = true;
        ++j;
      }
      if (j < n && t[j].text == "<") {
        const std::size_t c = match_angle(t, j, 64);
        if (c == kNpos) return;
        j = c + 1;
      }
      if (!saw_name || j >= n) return;
      if (t[j].text != "(" && t[j].text != "{") return;
      const std::size_t c = match_group(t, j);
      if (c == kNpos) return;
      j = c + 1;
      if (j < n && t[j].text == ",") {
        ++j;
        continue;
      }
      break;
    }
  }
  if (j >= n || t[j].text != "{") return;
  const std::size_t body_end = match_group(t, j);
  if (body_end == kNpos) return;

  FunctionInfo fn;
  fn.name = t[i].text;
  fn.line = t[i].line;
  fn.sig_begin = i;
  fn.body_begin = j;
  fn.body_end = body_end;
  if (i >= 2 && t[i - 1].text == "::" &&
      t[i - 2].kind == Token::Kind::kIdent) {
    fn.qualifier = t[i - 2].text;
  } else {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (!it->name.empty()) {
        fn.qualifier = it->name;
        break;
      }
    }
  }
  fm.functions.push_back(std::move(fn));
}

/// One structural pass: function definitions, enum definitions, class
/// scopes (for qualifiers), and enum-shaped switch sites.
void extract_structure(FileModel& fm) {
  const std::vector<Token>& t = fm.tokens;
  const std::size_t n = t.size();
  std::vector<ClassScope> scopes;
  std::map<std::size_t, std::string> class_opens;  // '{' index -> class name
  std::map<std::size_t, int> switch_opens;         // '{' index -> switch line

  struct SwitchFrame {
    SwitchSite site;
    bool non_enum = false;
    bool inconsistent = false;
    std::size_t close = kNpos;
  };
  std::vector<SwitchFrame> switch_stack;

  for (std::size_t i = 0; i < n; ++i) {
    const Token& tok = t[i];
    const std::string& s = tok.text;

    if (tok.kind == Token::Kind::kIdent) {
      if (s == "enum") {
        i = parse_enum(t, i, fm.path, fm.enums);
        continue;
      }
      if (s == "class" || s == "struct") {
        std::size_t j = i + 1;
        std::string name;
        if (j < n && t[j].kind == Token::Kind::kIdent &&
            t[j].text != "final") {
          name = t[j].text;
          ++j;
        }
        if (j < n && t[j].text == "final") ++j;
        if (j < n && t[j].text == ":") {
          while (j < n && t[j].text != "{" && t[j].text != ";") ++j;
        }
        if (j < n && t[j].text == "{") class_opens[j] = name;
        continue;
      }
      if (s == "switch") {
        if (i + 1 < n && t[i + 1].text == "(") {
          const std::size_t c = match_group(t, i + 1);
          if (c != kNpos && c + 1 < n && t[c + 1].text == "{") {
            switch_opens[c + 1] = tok.line;
          }
        }
        continue;
      }
      if (s == "case" && !switch_stack.empty()) {
        SwitchFrame& frame = switch_stack.back();
        std::size_t j = i + 1;
        std::vector<std::string> idents;
        while (j < n && t[j].text != ":" && t[j].text != ";" &&
               t[j].text != "{") {
          if (t[j].kind == Token::Kind::kIdent) idents.push_back(t[j].text);
          ++j;
        }
        if (idents.empty()) {
          frame.non_enum = true;  // numeric / char label: not an enum switch
        } else {
          frame.site.cases.push_back(idents.back());
          if (idents.size() >= 2) {
            const std::string& ename = idents[idents.size() - 2];
            if (frame.site.enum_name.empty()) {
              frame.site.enum_name = ename;
            } else if (frame.site.enum_name != ename) {
              frame.inconsistent = true;
            }
          }
        }
        i = (j < n) ? j : n - 1;
        continue;
      }
      if (s == "default" && !switch_stack.empty() && i + 1 < n &&
          t[i + 1].text == ":") {
        switch_stack.back().site.has_default = true;
        continue;
      }
      if (i + 1 < n && t[i + 1].text == "(" &&
          structural_keywords().count(s) == 0 &&
          !(i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->"))) {
        try_function(fm, t, i, scopes);
      }
      continue;
    }

    if (s == "{") {
      const auto ci = class_opens.find(i);
      if (ci != class_opens.end()) {
        const std::size_t c = match_group(t, i);
        if (c != kNpos) scopes.push_back({ci->second, c});
      }
      const auto si = switch_opens.find(i);
      if (si != switch_opens.end()) {
        const std::size_t c = match_group(t, i);
        if (c != kNpos) {
          SwitchFrame frame;
          frame.site.file = fm.path;
          frame.site.line = si->second;
          frame.close = c;
          switch_stack.push_back(std::move(frame));
        }
      }
      continue;
    }
    if (s == "}") {
      while (!scopes.empty() && scopes.back().close == i) scopes.pop_back();
      while (!switch_stack.empty() && switch_stack.back().close == i) {
        SwitchFrame frame = std::move(switch_stack.back());
        switch_stack.pop_back();
        if (!frame.non_enum && !frame.inconsistent &&
            !frame.site.cases.empty() && !frame.site.enum_name.empty()) {
          fm.switches.push_back(std::move(frame.site));
        }
      }
      continue;
    }
  }
}

// ---------------------------------------------------------------------------
// Codec extraction
// ---------------------------------------------------------------------------

/// Writer verbs and their read-side mirrors. Checked whole-name or
/// verb_<suffix>; "deserialize" never prefix-matches "serialize" because
/// the match is anchored at the start of the name.
const std::vector<std::string>& writer_verbs() {
  static const std::vector<std::string> v = {"serialize", "encode",
                                             "checkpoint"};
  return v;
}
const std::vector<std::string>& reader_verbs() {
  static const std::vector<std::string> v = {"deserialize", "decode",
                                             "restore"};
  return v;
}

bool split_codec_name(const std::string& name, bool& writer,
                      std::string& suffix) {
  for (int side = 0; side < 2; ++side) {
    const auto& verbs = side == 0 ? writer_verbs() : reader_verbs();
    for (const std::string& verb : verbs) {
      if (name == verb) {
        writer = side == 0;
        suffix.clear();
        return true;
      }
      if (name.size() > verb.size() + 1 &&
          name.compare(0, verb.size(), verb) == 0 &&
          name[verb.size()] == '_') {
        writer = side == 0;
        suffix = name.substr(verb.size());
        return true;
      }
    }
  }
  return false;
}

/// `_to_`/`_from_` collapse so checkpoint_to_file pairs restore_from_file.
std::string normalize_suffix(std::string suffix) {
  for (const char* dir : {"_to_", "_from_"}) {
    const std::size_t pos = suffix.find(dir);
    if (pos != std::string::npos) {
      suffix = suffix.substr(0, pos) + "_x_" +
               suffix.substr(pos + std::string(dir).size());
    }
  }
  return suffix;
}

const std::set<std::string>& byte_ops() {
  static const std::set<std::string> ops = {"u8",  "u32", "u64",
                                            "i64", "f64", "boolean",
                                            "str", "blob", "f64_vec"};
  return ops;
}

/// Ranges of functions nested inside `fn` (local structs' methods), so
/// per-function walks do not double-attribute their bodies.
std::vector<std::pair<std::size_t, std::size_t>> nested_ranges(
    const FileModel& fm, const FunctionInfo& fn) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (const FunctionInfo& g : fm.functions) {
    if (g.sig_begin > fn.body_begin && g.body_end < fn.body_end) {
      out.emplace_back(g.sig_begin, g.body_end);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void extract_codecs(FileModel& fm) {
  const std::vector<Token>& t = fm.tokens;
  for (const FunctionInfo& fn : fm.functions) {
    bool writer = false;
    std::string suffix;
    if (!split_codec_name(fn.name, writer, suffix)) continue;

    CodecFn codec;
    codec.file = fm.path;
    codec.key = fn.qualifier + "|" + normalize_suffix(suffix);
    codec.writer = writer;
    codec.display =
        fn.qualifier.empty() ? fn.name : fn.qualifier + "::" + fn.name;
    codec.line = fn.line;

    // The writer/reader variables: any identifier declared with a
    // ByteWriter / ByteReader type anywhere in the signature or body.
    const std::string type_name = writer ? "ByteWriter" : "ByteReader";
    std::set<std::string> vars;
    for (std::size_t i = fn.sig_begin; i < fn.body_end; ++i) {
      if (t[i].kind == Token::Kind::kIdent && t[i].text == type_name) {
        std::size_t j = i + 1;
        while (j < fn.body_end &&
               (t[j].text == "&" || t[j].text == "*" ||
                t[j].text == "const")) {
          ++j;
        }
        if (j < fn.body_end && t[j].kind == Token::Kind::kIdent) {
          vars.insert(t[j].text);
        }
      }
    }

    const auto skip = nested_ranges(fm, fn);
    std::size_t skip_idx = 0;
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      while (skip_idx < skip.size() && skip[skip_idx].second < i) ++skip_idx;
      if (skip_idx < skip.size() && i >= skip[skip_idx].first) {
        i = skip[skip_idx].second;
        continue;
      }
      const Token& tok = t[i];
      if ((tok.text == "." || tok.text == "->") && i > 0 &&
          i + 2 < fn.body_end && t[i - 1].kind == Token::Kind::kIdent &&
          vars.count(t[i - 1].text) != 0 &&
          t[i + 1].kind == Token::Kind::kIdent &&
          byte_ops().count(t[i + 1].text) != 0 && t[i + 2].text == "(") {
        codec.ops.push_back({t[i + 1].text, t[i + 1].line});
        continue;
      }
      // A nested codec call that receives the writer/reader is one "sub"
      // step: both sides must delegate at the same point.
      bool sub_writer = false;
      std::string sub_suffix;
      if (tok.kind == Token::Kind::kIdent && i + 1 < fn.body_end &&
          t[i + 1].text == "(" &&
          split_codec_name(tok.text, sub_writer, sub_suffix)) {
        const std::size_t close = match_group(t, i + 1);
        if (close != kNpos && close < fn.body_end) {
          for (std::size_t k = i + 2; k < close; ++k) {
            if (t[k].kind == Token::Kind::kIdent &&
                vars.count(t[k].text) != 0) {
              codec.ops.push_back({"sub", tok.line});
              break;
            }
          }
        }
      }
    }
    fm.codecs.push_back(std::move(codec));
  }
}

// ---------------------------------------------------------------------------
// Lock extraction
// ---------------------------------------------------------------------------

/// Normalize a mutex expression to a graph node. Single identifier gets
/// the owning class as a qualifier (so `mutex_` in two classes stays two
/// nodes); a chained expression keeps only its last identifier (the
/// `write_mutex` of whichever connection).
std::string mutex_node(const std::vector<std::string>& idents,
                       const std::string& qualifier) {
  if (idents.empty()) return "<expr>";
  if (idents.size() == 1) {
    return qualifier.empty() ? idents[0] : qualifier + "::" + idents[0];
  }
  return idents.back();
}

void extract_locks(FileModel& fm) {
  const std::vector<Token>& t = fm.tokens;
  for (const FunctionInfo& fn : fm.functions) {
    FunctionLockInfo info;
    info.display =
        fn.qualifier.empty() ? fn.name : fn.qualifier + "::" + fn.name;
    info.simple_name = fn.name;
    info.qualifier = fn.qualifier;
    info.file = fm.path;

    struct Held {
      std::string node;
      int depth = 0;
    };
    std::vector<Held> held;
    std::map<std::string, std::string> guard_to_mutex;
    std::set<std::string> acquired_set;
    int depth = 0;

    auto held_nodes = [&] {
      std::vector<std::string> nodes;
      nodes.reserve(held.size());
      for (const Held& h : held) nodes.push_back(h.node);
      return nodes;
    };
    auto acquire_group = [&](const std::vector<std::string>& nodes,
                             int line) {
      for (const Held& h : held) {
        for (const std::string& node : nodes) {
          info.edges.push_back({h.node, node, line});
        }
      }
      for (const std::string& node : nodes) {
        held.push_back({node, depth});
        if (acquired_set.insert(node).second) info.acquires.push_back(node);
      }
    };
    auto release = [&](const std::string& node) {
      for (auto it = held.rbegin(); it != held.rend(); ++it) {
        if (it->node == node) {
          held.erase(std::next(it).base());
          return;
        }
      }
    };

    const auto skip = nested_ranges(fm, fn);
    std::size_t skip_idx = 0;
    for (std::size_t i = fn.body_begin; i <= fn.body_end; ++i) {
      while (skip_idx < skip.size() && skip[skip_idx].second < i) ++skip_idx;
      if (skip_idx < skip.size() && i >= skip[skip_idx].first) {
        i = skip[skip_idx].second;
        continue;
      }
      const Token& tok = t[i];
      const std::string& s = tok.text;
      if (s == "{") {
        ++depth;
        continue;
      }
      if (s == "}") {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
        continue;
      }
      // Lambda: skip the whole closure ([caps](params) -> ret { body }).
      // Its body runs when the closure is invoked, which is generally NOT
      // under the locks held at the point it is constructed (the thread
      // spawned in Server::accept_loop being the canonical case).
      if (s == "[") {
        const std::size_t rb = match_group(t, i);
        if (rb != kNpos && rb < fn.body_end) {
          std::size_t j = rb + 1;
          if (t[j].text == "(") {
            const std::size_t rp = match_group(t, j);
            j = (rp == kNpos) ? fn.body_end : rp + 1;
          }
          // Scan past mutable/noexcept/-> ret tokens to the body brace;
          // `;` `)` `,` `}` mean this was a subscript, not a lambda.
          while (j < fn.body_end && t[j].text != "{" && t[j].text != ";" &&
                 t[j].text != ")" && t[j].text != "," && t[j].text != "}") {
            ++j;
          }
          if (j < fn.body_end && t[j].text == "{") {
            const std::size_t body_close = match_group(t, j);
            if (body_close != kNpos && body_close <= fn.body_end) {
              i = body_close;
              continue;
            }
          }
        }
        continue;
      }

      if (tok.kind == Token::Kind::kIdent &&
          (s == "lock_guard" || s == "unique_lock" || s == "scoped_lock")) {
        std::size_t j = i + 1;
        if (j < fn.body_end && t[j].text == "<") {
          const std::size_t c = match_angle(t, j, 32);
          if (c == kNpos) continue;
          j = c + 1;
        }
        if (j >= fn.body_end || t[j].kind != Token::Kind::kIdent) continue;
        const std::string guard_name = t[j].text;
        ++j;
        if (j >= fn.body_end || (t[j].text != "(" && t[j].text != "{")) {
          continue;
        }
        const std::size_t close = match_group(t, j);
        if (close == kNpos || close > fn.body_end) continue;

        // Split the top-level comma-separated args into mutex exprs and
        // lock-policy tags.
        std::vector<std::string> nodes;
        bool deferred = false;
        std::vector<std::string> arg_idents;
        int nest = 0;
        auto flush_arg = [&] {
          if (arg_idents.empty()) return;
          const std::string& last = arg_idents.back();
          if (last == "defer_lock" || last == "adopt_lock") {
            deferred = true;  // not acquired at construction
          } else if (last != "try_to_lock") {
            nodes.push_back(mutex_node(arg_idents, fn.qualifier));
          }
          arg_idents.clear();
        };
        for (std::size_t k = j + 1; k < close; ++k) {
          const std::string& a = t[k].text;
          if (a == "(" || a == "[" || a == "{") ++nest;
          if (a == ")" || a == "]" || a == "}") --nest;
          if (a == "," && nest == 0) {
            flush_arg();
            continue;
          }
          if (t[k].kind == Token::Kind::kIdent && a != "std" &&
              a != "this") {
            arg_idents.push_back(a);
          }
        }
        flush_arg();
        if (!nodes.empty()) guard_to_mutex[guard_name] = nodes.front();
        if (!deferred) acquire_group(nodes, tok.line);
        i = close;
        continue;
      }

      if ((s == "." || s == "->") && i + 3 <= fn.body_end &&
          t[i + 1].kind == Token::Kind::kIdent &&
          (t[i + 1].text == "lock" || t[i + 1].text == "unlock") &&
          t[i + 2].text == "(" && t[i + 3].text == ")") {
        // Receiver chain: ident ((. | ->) ident)* directly before.
        std::vector<std::string> chain;
        std::size_t k = i;
        while (k >= 1 && t[k - 1].kind == Token::Kind::kIdent) {
          chain.insert(chain.begin(), t[k - 1].text);
          if (k >= 3 && (t[k - 2].text == "." || t[k - 2].text == "->") &&
              t[k - 3].kind == Token::Kind::kIdent) {
            k -= 2;
          } else {
            break;
          }
        }
        if (!chain.empty() && chain.front() == "this") {
          chain.erase(chain.begin());
        }
        std::string node;
        if (chain.size() == 1 && guard_to_mutex.count(chain[0]) != 0) {
          node = guard_to_mutex[chain[0]];
        } else if (!chain.empty()) {
          node = mutex_node(chain, fn.qualifier);
        }
        if (!node.empty()) {
          if (t[i + 1].text == "lock") {
            acquire_group({node}, t[i + 1].line);
          } else {
            release(node);
          }
        }
        i += 3;
        continue;
      }

      if (tok.kind == Token::Kind::kIdent && i + 1 <= fn.body_end &&
          t[i + 1].text == "(" && structural_keywords().count(s) == 0) {
        // Member calls through an unknown receiver are not resolvable by
        // simple name; `this->helper()` and unqualified calls are.
        std::string qual;
        bool unresolvable_member = false;
        if (i > fn.body_begin) {
          const std::string& prev = t[i - 1].text;
          if (prev == "." || prev == "->") {
            unresolvable_member =
                !(i >= 2 && t[i - 2].text == "this");
          } else if (prev == "::" && i >= 2 &&
                     t[i - 2].kind == Token::Kind::kIdent) {
            qual = t[i - 2].text;
          }
        }
        if (!unresolvable_member) {
          info.calls.push_back({s, qual, held_nodes(), tok.line});
        }
        continue;
      }
    }

    if (!info.acquires.empty() || !info.edges.empty() ||
        !info.calls.empty()) {
      fm.lock_info.push_back(std::move(info));
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Per-file model
// ---------------------------------------------------------------------------
FileModel build_file_model(const std::string& path,
                           const std::string& source) {
  FileModel fm;
  fm.path = path;
  fm.lexed = lex(source);
  fm.tokens = tokenize(fm.lexed);
  extract_structure(fm);
  extract_codecs(fm);
  extract_locks(fm);
  return fm;
}

// ---------------------------------------------------------------------------
// Project model: cross-file aggregation + interprocedural lock graph
// ---------------------------------------------------------------------------
ProjectModel ProjectModel::build(std::vector<FileModel> file_models) {
  ProjectModel pm;
  pm.files = std::move(file_models);
  std::sort(pm.files.begin(), pm.files.end(),
            [](const FileModel& a, const FileModel& b) {
              return a.path < b.path;
            });

  // Callee resolution is by simple name over the project's own function
  // definitions — deliberately conservative (a call may reach any of the
  // same-named functions).
  std::map<std::string, std::vector<const FunctionLockInfo*>> by_name;
  std::vector<const FunctionLockInfo*> all;
  for (const FileModel& fm : pm.files) {
    for (const FunctionLockInfo& info : fm.lock_info) {
      by_name[info.simple_name].push_back(&info);
      all.push_back(&info);
    }
  }

  // Resolve a call site to candidate definitions: by simple name, narrowed
  // to the named class when the call was `::`-qualified.
  auto resolve = [&by_name](const FunctionLockInfo::Call& call)
      -> std::vector<const FunctionLockInfo*> {
    const auto it = by_name.find(call.callee);
    if (it == by_name.end()) return {};
    if (call.qualifier.empty()) return it->second;
    std::vector<const FunctionLockInfo*> out;
    for (const FunctionLockInfo* g : it->second) {
      if (g->qualifier == call.qualifier) out.push_back(g);
    }
    return out;
  };

  // may_acquire fixpoint: everything a function may lock, transitively.
  std::map<const FunctionLockInfo*, std::set<std::string>> may;
  for (const FunctionLockInfo* f : all) {
    may[f] = std::set<std::string>(f->acquires.begin(), f->acquires.end());
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionLockInfo* f : all) {
      std::set<std::string>& mine = may[f];
      for (const auto& call : f->calls) {
        for (const FunctionLockInfo* g : resolve(call)) {
          for (const std::string& node : may[g]) {
            if (mine.insert(node).second) changed = true;
          }
        }
      }
    }
  }

  // Edges, deduped on (from, to) keeping the smallest (file, line) site so
  // the diagnostic (and its suppression comment) lands on a stable line.
  std::map<std::pair<std::string, std::string>, LockEdge> best;
  auto consider = [&best](LockEdge e) {
    const auto key = std::make_pair(e.from, e.to);
    const auto it = best.find(key);
    if (it == best.end() || std::make_pair(e.file, e.line) <
                                std::make_pair(it->second.file,
                                               it->second.line)) {
      best[key] = std::move(e);
    }
  };
  for (const FunctionLockInfo* f : all) {
    for (const auto& e : f->edges) {
      consider({e.from, e.to, f->file, e.line, f->display});
    }
    for (const auto& call : f->calls) {
      if (call.held.empty()) continue;
      std::set<std::string> targets;
      for (const FunctionLockInfo* g : resolve(call)) {
        targets.insert(may[g].begin(), may[g].end());
      }
      for (const std::string& h : call.held) {
        for (const std::string& m : targets) {
          consider({h, m, f->file, call.line, f->display});
        }
      }
    }
  }
  pm.lock_edges.reserve(best.size());
  for (auto& [key, edge] : best) pm.lock_edges.push_back(std::move(edge));
  return pm;
}

const FileModel* ProjectModel::file(const std::string& path) const {
  for (const FileModel& fm : files) {
    if (fm.path == path) return &fm;
  }
  return nullptr;
}

}  // namespace phodis::lint
